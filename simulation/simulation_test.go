package simulation_test

import (
	"strings"
	"testing"
	"time"

	"lifeguard/simulation"
)

func TestPublicSimulationAPI(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation run")
	}
	swim, err := simulation.RunInterval(
		simulation.ClusterConfig{N: 48, Seed: 2, Protocol: simulation.ConfigSWIM},
		simulation.IntervalParams{C: 8, D: 16384 * time.Millisecond, I: 64 * time.Millisecond},
	)
	if err != nil {
		t.Fatal(err)
	}
	lg, err := simulation.RunInterval(
		simulation.ClusterConfig{N: 48, Seed: 2, Protocol: simulation.ConfigLifeguard},
		simulation.IntervalParams{C: 8, D: 16384 * time.Millisecond, I: 64 * time.Millisecond},
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("SWIM FP=%d, Lifeguard FP=%d", swim.FP, lg.FP)
	if swim.FP == 0 {
		t.Error("SWIM produced no false positives under heavy anomalies")
	}
	if lg.FP*5 > swim.FP {
		t.Errorf("Lifeguard FP=%d not well below SWIM FP=%d", lg.FP, swim.FP)
	}
}

func TestCustomClusterExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation run")
	}
	// Drive a cluster manually through the public API: gate one member,
	// watch it get suspected, release it, watch it recover.
	c, err := simulation.NewCluster(simulation.ClusterConfig{
		N: 16, Seed: 4, Protocol: simulation.ConfigLifeguard,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	if err := c.Start(15 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !c.Converged() {
		t.Fatal("no convergence")
	}

	victim := simulation.NodeName(3)
	c.SetAnomalous([]string{victim}, true)
	c.Sched.RunFor(5 * time.Second)
	suspected := false
	for _, n := range c.Nodes {
		if m, ok := n.Member(victim); ok && m.State.String() == "suspect" {
			suspected = true
		}
	}
	if !suspected {
		t.Error("gated member never suspected")
	}

	c.SetAnomalous([]string{victim}, false)
	c.Sched.RunFor(30 * time.Second)
	if !c.Converged() {
		t.Error("cluster did not re-converge after release")
	}
}

func TestConfigurationsMatchTableI(t *testing.T) {
	names := make([]string, 0, len(simulation.Configurations))
	for _, p := range simulation.Configurations {
		names = append(names, p.Name)
	}
	want := []string{"SWIM", "LHA-Probe", "LHA-Suspicion", "Buddy System", "Lifeguard"}
	if len(names) != len(want) {
		t.Fatalf("configurations = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("configurations = %v, want %v", names, want)
		}
	}
}

func TestPublicPartitionAPI(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation run")
	}
	res, err := simulation.RunPartition(
		simulation.ClusterConfig{N: 16, Seed: 5, Protocol: simulation.ConfigLifeguard},
		simulation.PartitionParams{SizeA: 8, Duration: time.Minute, HealBudget: 3 * time.Minute},
	)
	if err != nil {
		t.Fatal(err)
	}
	if !res.SideAConverged || !res.SideBConverged {
		t.Error("partitioned sides did not settle")
	}
	if !res.Remerged {
		t.Error("no automatic re-merge after healing")
	}
}

func TestPublicChaosAPI(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos matrix run")
	}
	res, err := simulation.RunChaos(
		simulation.ClusterConfig{Seed: 2},
		simulation.ChaosParams{
			N: 24, Victims: 3, Crashes: 2,
			FaultFor: 20 * time.Second, Settle: 20 * time.Second,
			Scenarios: []string{"degraded", "lossy-link"},
			Configs:   []simulation.ProtocolConfig{simulation.ConfigSWIM, simulation.ConfigLifeguard},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 4 {
		t.Fatalf("got %d cells, want 4", len(res.Cells))
	}
	for _, cell := range res.Cells {
		if cell.CrashesDetected != cell.Crashes {
			t.Errorf("%s/%s: detected %d of %d crashes", cell.Scenario, cell.Config, cell.CrashesDetected, cell.Crashes)
		}
		if cell.Scenario == "lossy-link" && cell.Duplicated == 0 {
			t.Errorf("%s/%s: duplication fault never fired", cell.Scenario, cell.Config)
		}
	}
	if out := simulation.FormatChaos(res); !strings.Contains(out, "degraded") {
		t.Errorf("FormatChaos output lacks scenario rows:\n%s", out)
	}
	if names := simulation.ChaosScenarioNames(); len(names) != 5 {
		t.Errorf("ChaosScenarioNames = %v", names)
	}
}

// TestPublicScenarioHarnessAPI drives the scenario registry through
// the public face: the built-in scenarios are listed, and the
// rolling-restart scenario runs end to end via RunScenario with a
// parallel executor, producing stamped records.
func TestPublicScenarioHarnessAPI(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario run")
	}
	names := simulation.ScenarioNames()
	if len(names) == 0 {
		t.Fatal("no scenarios registered")
	}
	seen := map[string]bool{}
	for _, name := range names {
		seen[name] = true
		if _, err := simulation.LookupScenario(name); err != nil {
			t.Errorf("lookup %s: %v", name, err)
		}
	}
	for _, want := range []string{"interval", "chaos", "rolling-restart"} {
		if !seen[want] {
			t.Errorf("scenario %q not registered: %v", want, names)
		}
	}
	if len(simulation.Scenarios()) != len(names) {
		t.Error("Scenarios and ScenarioNames disagree")
	}

	res, err := simulation.RunScenario("rolling-restart", simulation.RunOptions{
		Scale:    simulation.Scale{Name: "tiny", RestartN: 24, RestartWaves: 2},
		Seed:     3,
		Parallel: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != len(simulation.Configurations) {
		t.Fatalf("got %d records, want one per Table I configuration", len(res.Records))
	}
	for _, rec := range res.Records {
		if rec.Experiment != "rolling-restart" || rec.Scale != "tiny" || rec.Seed != 3 ||
			rec.Cells != len(simulation.Configurations) || rec.Wall <= 0 {
			t.Errorf("record stamp %+v", rec)
		}
		if rec.Metrics["rejoined"] != rec.Metrics["restarts"] {
			t.Errorf("%s: %g of %g restarted members rejoined",
				rec.Config, rec.Metrics["rejoined"], rec.Metrics["restarts"])
		}
	}
	if len(res.Sections) != 1 || !strings.Contains(res.Sections[0].Body, "Lifeguard") {
		t.Errorf("sections %+v", res.Sections)
	}
}

// TestPublicRestartAPI runs the rolling-restart library entry point
// directly and checks the formatter renders its cells.
func TestPublicRestartAPI(t *testing.T) {
	if testing.Short() {
		t.Skip("rolling-restart run")
	}
	res, err := simulation.RunRestart(
		simulation.ClusterConfig{Seed: 2},
		simulation.RestartParams{
			N: 24, Waves: 2, PerWave: 2,
			Configs: []simulation.ProtocolConfig{simulation.ConfigLifeguard},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 1 {
		t.Fatalf("got %d cells, want 1", len(res.Cells))
	}
	cell := res.Cells[0]
	if cell.Restarts != 4 || cell.Rejoined != 4 {
		t.Errorf("restarts %d rejoined %d, want 4/4", cell.Restarts, cell.Rejoined)
	}
	if out := simulation.FormatRestart(res); !strings.Contains(out, "Lifeguard") {
		t.Errorf("FormatRestart output lacks the configuration row:\n%s", out)
	}
}

// TestPublicFaultScheduleAPI scripts a custom fault against a cluster
// through the public face: degrade one member, watch it get suspected
// while it stays alive, restore it, watch the cluster re-converge.
func TestPublicFaultScheduleAPI(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation run")
	}
	c, err := simulation.NewCluster(simulation.ClusterConfig{
		N: 16, Seed: 6, Protocol: simulation.ConfigLifeguard,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	if err := c.Start(15 * time.Second); err != nil {
		t.Fatal(err)
	}

	victim := simulation.NodeName(5)
	s := &simulation.FaultSchedule{}
	s.DegradeNode(0, victim, simulation.DelayDist{Base: 2 * time.Second, Jitter: 2 * time.Second})
	s.RestoreNode(20*time.Second, victim)
	c.Net.InstallFaults(s)
	c.Sched.RunFor(20 * time.Second)
	suspected := false
	for _, ev := range c.Events.Events() {
		if ev.Subject == victim && ev.Observer != victim && ev.Type.String() == "suspect" {
			suspected = true
		}
	}
	if !suspected {
		t.Error("degraded member never suspected")
	}
	c.Sched.RunFor(50 * time.Second)
	if !c.Converged() {
		t.Error("cluster did not re-converge after the degradation ended")
	}
}

// TestPublicRunScenariosAPI runs two scenarios through the shared
// worker pool entry point and checks each comes back under its own
// name with correctly stamped records.
func TestPublicRunScenariosAPI(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario runs")
	}
	names := []string{"partition", "rolling-restart"}
	results, err := simulation.RunScenarios(names, simulation.RunOptions{
		Scale:    simulation.Scale{Name: "tiny", PartitionN: 16, RestartN: 24, RestartWaves: 2},
		Seed:     3,
		Parallel: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(names) {
		t.Fatalf("got %d results, want %d", len(results), len(names))
	}
	for i, nr := range results {
		if nr.Name != names[i] {
			t.Fatalf("results[%d] = %q, want %q", i, nr.Name, names[i])
		}
		if nr.Cells == 0 || len(nr.Result.Records) == 0 {
			t.Fatalf("scenario %s: empty result", nr.Name)
		}
		for _, rec := range nr.Result.Records {
			if rec.Experiment != nr.Name || rec.Scale != "tiny" || rec.Seed != 3 || rec.Cells != nr.Cells {
				t.Errorf("scenario %s: record stamp %+v", nr.Name, rec)
			}
		}
	}
}
