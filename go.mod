module lifeguard

go 1.22
