#!/usr/bin/env bash
# Record one bench-trajectory data point in BENCH_scenarios.json: the
# tracked microbenchmarks (scheduler insert+pop, wire encode, zero-copy
# fan-out delivery, push-pull snapshot) plus a smoke -exp all run
# through the shared worker pool. See the "Bench trajectory" section of
# docs/LIFEBENCH.md for the entry format.
#
# Usage: scripts/bench.sh [note]
#   note      free-form context stored in the entry (default: short HEAD)
#   BENCH_OUT target file (default: BENCH_scenarios.json)
#   PARALLEL  lifebench -parallel value (default: 2)
set -euo pipefail
cd "$(dirname "$0")/.."

out=${BENCH_OUT:-BENCH_scenarios.json}
note=${1:-$(git rev-parse --short HEAD 2>/dev/null || echo untracked)}
parallel=${PARALLEL:-2}

read -r ns allocs < <(go test -run '^$' \
    -bench 'BenchmarkSchedulerInsertPop/calendar/pending=100000$' \
    -benchmem -benchtime 1s ./internal/sim |
    awk '/^BenchmarkSchedulerInsertPop/ {ns=$3; allocs=$7} END {print ns, allocs}')
echo "scheduler insert+pop @100k pending: ${ns} ns/op, ${allocs} allocs/op" >&2

read -r cns callocs < <(go test -run '^$' \
    -bench 'BenchmarkEncodeAllocs$' -benchmem -benchtime 1s . |
    awk '/^BenchmarkEncodeAllocs/ {ns=$3; allocs=$7} END {print ns, allocs}')
echo "wire encode (alive + 16-member piggyback): ${cns} ns/op, ${callocs} allocs/op" >&2

read -r fns fallocs < <(go test -run '^$' \
    -bench 'BenchmarkNetworkDeliverFanout$' -benchmem -benchtime 1s ./internal/sim |
    awk '/^BenchmarkNetworkDeliverFanout/ {ns=$3; allocs=$7} END {print ns, allocs}')
echo "zero-copy fan-out delivery (8 destinations): ${fns} ns/op, ${fallocs} allocs/op" >&2

read -r pns pallocs < <(go test -run '^$' \
    -bench 'BenchmarkPushPullSnapshot$' -benchmem -benchtime 1s ./internal/core |
    awk '/^BenchmarkPushPullSnapshot/ {ns=$3; allocs=$7} END {print ns, allocs}')
echo "push-pull snapshot @1k members: ${pns} ns/op, ${pallocs} allocs/op" >&2

go run ./cmd/lifebench -exp all -scale smoke -quiet -timings=false \
    -parallel "$parallel" -bench-out "$out" -bench-note "$note" >/dev/null

tmp=$(mktemp)
jq --argjson ns "$ns" --argjson allocs "$allocs" \
    --argjson cns "$cns" --argjson callocs "$callocs" \
    --argjson fns "$fns" --argjson fallocs "$fallocs" \
    --argjson pns "$pns" --argjson pallocs "$pallocs" \
    '.[-1].sched_bench = {ns_op: $ns, allocs_op: $allocs}
     | .[-1].codec_bench = {ns_op: $cns, allocs_op: $callocs}
     | .[-1].fanout_bench = {ns_op: $fns, allocs_op: $fallocs}
     | .[-1].pushpull_bench = {ns_op: $pns, allocs_op: $pallocs}' "$out" > "$tmp"
mv "$tmp" "$out"
echo "appended entry '$note' to $out" >&2
