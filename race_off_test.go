//go:build !race

package lifeguard_test

// raceEnabled mirrors race_on_test.go for regular builds.
const raceEnabled = false
