package lifeguard_test

// End-to-end tests of the public API over real UDP/TCP on loopback:
// what a downstream user of the library actually runs.

import (
	"fmt"
	"testing"
	"time"

	"lifeguard"
)

type udpMember struct {
	node *lifeguard.Node
	tr   *lifeguard.UDPTransport
}

// startUDPCluster boots n members with fast timers and joins them
// through the first.
func startUDPCluster(t *testing.T, n int, configure func(*lifeguard.Config)) []udpMember {
	t.Helper()
	var cluster []udpMember
	t.Cleanup(func() {
		for _, m := range cluster {
			m.node.Shutdown()
			m.tr.Close()
		}
	})
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("udp-%d", i)
		tr, err := lifeguard.NewUDPTransport("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		cfg := lifeguard.DefaultConfig(name)
		cfg.Addr = tr.LocalAddr()
		cfg.Transport = tr
		// Accelerated timers so the suite stays fast; every protocol
		// timeout scales off these.
		cfg.ProbeInterval = 100 * time.Millisecond
		cfg.ProbeTimeout = 50 * time.Millisecond
		cfg.GossipInterval = 20 * time.Millisecond
		cfg.PushPullInterval = time.Second
		if configure != nil {
			configure(cfg)
		}
		node, err := lifeguard.NewNode(cfg)
		if err != nil {
			tr.Close()
			t.Fatal(err)
		}
		tr.Run(node.HandlePacket)
		if err := node.Start(); err != nil {
			tr.Close()
			t.Fatal(err)
		}
		cluster = append(cluster, udpMember{node: node, tr: tr})
		if i > 0 {
			if err := node.Join(cluster[0].node.Addr()); err != nil {
				t.Fatal(err)
			}
		}
	}
	return cluster
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestUDPClusterConverges(t *testing.T) {
	if testing.Short() {
		t.Skip("real-network test")
	}
	cluster := startUDPCluster(t, 4, nil)
	waitFor(t, 10*time.Second, func() bool {
		for _, m := range cluster {
			alive := 0
			for _, mm := range m.node.Members() {
				if mm.State == lifeguard.StateAlive {
					alive++
				}
			}
			if alive != len(cluster) {
				return false
			}
		}
		return true
	}, "full convergence")
}

func TestUDPClusterDetectsCrash(t *testing.T) {
	if testing.Short() {
		t.Skip("real-network test")
	}
	cluster := startUDPCluster(t, 4, nil)
	waitFor(t, 10*time.Second, func() bool {
		return cluster[0].node.NumAlive() == len(cluster)
	}, "convergence")

	victim := cluster[2]
	victim.node.Shutdown()
	victim.tr.Close()

	// Suspicion floor: 5·max(1,log10(4))·100ms = 500ms; with β=6 and
	// confirmations from 2 healthy peers it lands well under 5s.
	waitFor(t, 20*time.Second, func() bool {
		m, ok := cluster[0].node.Member(victim.node.Name())
		return ok && m.State == lifeguard.StateDead
	}, "crash detection")
}

func TestUDPClusterGracefulLeave(t *testing.T) {
	if testing.Short() {
		t.Skip("real-network test")
	}
	cluster := startUDPCluster(t, 3, nil)
	waitFor(t, 10*time.Second, func() bool {
		return cluster[0].node.NumAlive() == len(cluster)
	}, "convergence")

	cluster[1].node.Leave()
	waitFor(t, 10*time.Second, func() bool {
		m, ok := cluster[0].node.Member(cluster[1].node.Name())
		return ok && m.State == lifeguard.StateLeft
	}, "leave dissemination")
}

func TestUDPSuspicionRefutedUnderLifeguard(t *testing.T) {
	if testing.Short() {
		t.Skip("real-network test")
	}
	deadCh := make(chan string, 16)
	cluster := startUDPCluster(t, 4, func(cfg *lifeguard.Config) {
		cfg.Events = deadWatcher{ch: deadCh}
	})
	waitFor(t, 10*time.Second, func() bool {
		return cluster[0].node.NumAlive() == len(cluster)
	}, "convergence")

	// All members healthy: no dead events may appear during quiet
	// operation.
	select {
	case name := <-deadCh:
		t.Fatalf("healthy member %s declared dead", name)
	case <-time.After(3 * time.Second):
	}
}

type deadWatcher struct {
	lifeguard.NopEvents
	ch chan string
}

func (d deadWatcher) NotifyDead(m lifeguard.Member) {
	select {
	case d.ch <- m.Name:
	default:
	}
}
