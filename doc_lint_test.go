package lifeguard

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"strings"
	"testing"
)

// TestExportedSymbolsDocumented is the doc lint for the public surface
// (this package and simulation/): every exported type, function,
// method, constant, variable, struct field and interface method must
// carry a doc comment. CI runs it as a dedicated step, so a godoc
// regression fails the build — the AST-walk equivalent of `revive
// exported`, with no external dependency.
func TestExportedSymbolsDocumented(t *testing.T) {
	for _, dir := range []string{".", "./simulation"} {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		for _, pkg := range pkgs {
			for _, file := range pkg.Files {
				checkFileDocs(t, fset, file)
			}
		}
	}
}

func checkFileDocs(t *testing.T, fset *token.FileSet, file *ast.File) {
	t.Helper()
	undocumented := func(name string, pos token.Pos) {
		t.Errorf("%s: exported %s has no doc comment", fset.Position(pos), name)
	}
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if d.Name.IsExported() && d.Doc == nil {
				undocumented("func "+d.Name.Name, d.Pos())
			}
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if !s.Name.IsExported() {
						continue
					}
					if d.Doc == nil && s.Doc == nil {
						undocumented("type "+s.Name.Name, s.Pos())
					}
					checkCompositeDocs(t, fset, s)
				case *ast.ValueSpec:
					for _, name := range s.Names {
						// A doc on the const/var block covers single
						// specs; grouped specs may document per line.
						if name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
							undocumented(name.Name, name.Pos())
						}
					}
				}
			}
		}
	}
}

// checkCompositeDocs enforces docs on exported struct fields and
// interface methods of an exported type.
func checkCompositeDocs(t *testing.T, fset *token.FileSet, s *ast.TypeSpec) {
	t.Helper()
	var fields *ast.FieldList
	kind := ""
	switch typ := s.Type.(type) {
	case *ast.StructType:
		fields, kind = typ.Fields, "field"
	case *ast.InterfaceType:
		fields, kind = typ.Methods, "method"
	default:
		return
	}
	for _, f := range fields.List {
		if f.Doc != nil || f.Comment != nil {
			continue
		}
		for _, name := range f.Names {
			if name.IsExported() {
				t.Errorf("%s: exported %s %s.%s has no doc comment",
					fset.Position(name.Pos()), kind, s.Name.Name, name.Name)
			}
		}
	}
}
