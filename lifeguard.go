// Package lifeguard is a from-scratch implementation of SWIM group
// membership with the Lifeguard extensions — Local Health Aware Probe,
// Local Health Aware Suspicion and the Buddy System — as described in
// "Lifeguard: Local Health Awareness for More Accurate Failure
// Detection" (Dadgar, Phillips, Currey; DSN 2018).
//
// The protocol core is transport- and clock-agnostic: the same Node runs
// in real time over UDP/TCP (NewUDPTransport) and in virtual time on the
// bundled discrete-event simulator used by the paper's experiments (see
// internal/experiment and cmd/lifebench).
//
// # Quickstart
//
//	cfg := lifeguard.DefaultConfig("node-1")
//	tr, err := lifeguard.NewUDPTransport("127.0.0.1:7946")
//	// handle err
//	cfg.Transport = tr
//	node, err := lifeguard.NewNode(cfg)
//	// handle err
//	tr.Run(node.HandlePacket) // start delivering packets
//	node.Start()
//	node.Join("127.0.0.1:7947") // any existing member
//
// Membership changes arrive through Config.Events; the current view is
// available from Node.Members.
package lifeguard

import (
	"lifeguard/internal/coords"
	"lifeguard/internal/core"
	"lifeguard/internal/nettrans"
	"lifeguard/internal/telemetry"
)

// Node is one group member. Create it with NewNode, start the protocol
// with Node.Start, and feed inbound packets to Node.HandlePacket. The
// zero value is not usable. See the core package for protocol details.
type Node = core.Node

// Config parameterizes a Node. The zero value is not usable: start
// from DefaultConfig (all Lifeguard components on) or SWIMConfig (the
// paper's baseline) and override fields; durations are wall-clock
// (virtual time under the simulator), and zero-valued tunables take
// the documented per-field defaults at NewNode.
type Config = core.Config

// Member is a snapshot of one member's entry in the membership view,
// valid as of the call that returned it (it does not track later
// state changes).
type Member = core.Member

// State is a member's liveness state. The zero value is invalid; real
// states start at StateAlive.
type State = core.State

// Member liveness states.
const (
	StateAlive   = core.StateAlive
	StateSuspect = core.StateSuspect
	StateDead    = core.StateDead
	StateLeft    = core.StateLeft
)

// EventDelegate receives membership change notifications.
type EventDelegate = core.EventDelegate

// NopEvents is an EventDelegate that ignores all notifications.
type NopEvents = core.NopEvents

// Transport moves packets between members.
//
// Payload lifetime contract (established in the zero-allocation send
// path rework): the payload slice passed to SendPacket is only valid
// for the duration of the call — the core reuses the underlying buffer
// for the next packet as soon as SendPacket returns. A Transport that
// delivers asynchronously (queues the packet, hands it to another
// goroutine, retains it for retry) MUST copy the payload before
// returning. The bundled transports comply: the simulator copies into
// a pooled buffer, and the UDP transport copies on its asynchronous
// TCP path. Symmetrically, the payload delivered to a packet handler
// is only valid for the duration of the handler call.
type Transport = core.Transport

// Coordinate is a Vivaldi network coordinate: each member maintains
// one, updated from probe round-trip times, and the distance between
// two members' coordinates estimates the RTT between them (all
// components are in seconds; DistanceTo converts to time.Duration).
// The zero value is not a valid coordinate — engines start from the
// configured origin. See Node.Coordinate, Node.EstimateRTT and
// Node.EffectiveProbeTimeout; coordinates are enabled by default and
// controlled by Config.DisableCoordinates, and the coordinate-driven
// protocol extensions (Config.AdaptiveProbeTimeout,
// Config.CoordinateRelaySelection, Config.LatencyAwareGossip) build
// on them.
type Coordinate = coords.Coordinate

// CoordConfig tunes the Vivaldi coordinate engine (dimensionality,
// adjustment window, latency filter, gravity). The zero value is not
// usable; see DefaultCoordConfig.
type CoordConfig = coords.Config

// DefaultCoordConfig returns the Vivaldi tuning used by default:
// 8 dimensions plus a height vector, a 20-sample adjustment window,
// a 3-sample median latency filter, and gravity toward the origin.
func DefaultCoordConfig() *CoordConfig { return coords.DefaultConfig() }

// UDPTransport is the production transport: UDP datagrams with a TCP
// side channel for reliable traffic (push-pull anti-entropy and fallback
// probes).
type UDPTransport = nettrans.Transport

// DefaultConfig returns the paper's configuration with all Lifeguard
// components enabled (α = 5, β = 6, K = 3, S = 8).
func DefaultConfig(name string) *Config { return core.DefaultConfig(name) }

// SWIMConfig returns the paper's baseline configuration with all
// Lifeguard components disabled (fixed suspicion timeout, α = 5).
func SWIMConfig(name string) *Config { return core.SWIMConfig(name) }

// NewNode validates cfg and returns an unstarted Node.
func NewNode(cfg *Config) (*Node, error) { return core.New(cfg) }

// NewUDPTransport binds a UDP socket and TCP listener on bindAddr
// ("host:port"; port 0 picks a free port) and returns the transport.
// Call Run with the node's HandlePacket to start delivery, and Close on
// shutdown.
func NewUDPTransport(bindAddr string) (*UDPTransport, error) {
	return nettrans.New(bindAddr)
}

// TelemetryRecorder receives protocol observations — direct-ack RTTs,
// probe outcomes, Local Health Multiplier changes and suspicion
// lifecycle durations. Assign an implementation to Config.Telemetry to
// enable recording; the nil default disables it at zero cost.
// Implementations must be safe for concurrent use and must not feed
// back into the protocol (no RNG draws, timers or packets), so
// enabling telemetry never perturbs protocol behavior.
type TelemetryRecorder = telemetry.Recorder

// ProbeOutcome classifies how one probe round ended, as reported to
// TelemetryRecorder.RecordProbe.
type ProbeOutcome = telemetry.ProbeOutcome

// Probe round outcomes.
const (
	// OutcomeDirectAck is an ack on the direct UDP path (also yields an
	// RTT sample).
	OutcomeDirectAck = telemetry.OutcomeDirectAck

	// OutcomeIndirectAck is an ack that arrived via an indirect relay
	// or the TCP fallback after the direct path timed out.
	OutcomeIndirectAck = telemetry.OutcomeIndirectAck

	// OutcomeTimeout is a probe round that ended with no ack at all.
	OutcomeTimeout = telemetry.OutcomeTimeout
)

// NodeTelemetry is the bundled TelemetryRecorder: bounded per-(peer,
// epoch) RTT sample partitions, per-peer probe outcome counters, and
// RTT/suspicion histograms. Its Snapshot method backs the agent's
// /telemetry endpoint.
type NodeTelemetry = telemetry.NodeRecorder

// NodeTelemetryConfig parameterizes NewNodeTelemetry; the zero value
// takes the documented defaults (60 s epochs, 128 samples per
// partition, 1024 partitions, 8 lock stripes).
type NodeTelemetryConfig = telemetry.NodeConfig

// TelemetrySnapshot is a point-in-time copy of a NodeTelemetry: per-peer
// RTT quantiles and loss rates, histograms, and buffer occupancy.
type TelemetrySnapshot = telemetry.Snapshot

// NewNodeTelemetry validates cfg and returns an empty recorder, ready
// to assign to Config.Telemetry.
func NewNodeTelemetry(cfg NodeTelemetryConfig) (*NodeTelemetry, error) {
	return telemetry.NewNodeRecorder(cfg)
}
