//go:build race

package lifeguard_test

// raceEnabled reports whether the race detector is active. Under it,
// sync.Pool randomly drops Put items to expose races, so zero-alloc
// pins on pooled paths are meaningless and skip themselves.
const raceEnabled = true
